#!/bin/sh
# Chaos smoke test: the crash-safety and overload contract of cmd/baryonsimd.
# Everything here is deliberately hostile — kill -9 mid-flight, corrupt and
# truncated store entries, an open-loop request flood past capacity — and the
# service must come back serving byte-identical results every time:
#   1. reference pass: a fresh daemon computes a 2-job mix; the bundles are
#      dumped as the byte-identity reference for every later phase;
#   2. crash recovery: kill -9 the daemon with requests in flight and a
#      planted orphan .tmp in the store; the restarted daemon's recovery scan
#      sweeps it and serves the full mix from disk, byte-identical, without
#      simulating;
#   3. corruption self-heal: flip a byte in one published bundle and truncate
#      another; the next daemon quarantines both on read, recomputes, and
#      still answers byte-identically (quarantine counters visible on
#      /metrics);
#   4. overload shedding: a one-worker daemon with tight admission bounds is
#      flooded open-loop; it must shed load with 429s (clients observe
#      rejections), every request must converge via retries (zero final
#      failures), and the daemon must still drain cleanly on SIGTERM.
# Loopback only — the smoke passes offline. The same failure modes are
# covered in-process by internal/service's FaultFS tests; this script is the
# end-to-end check against a real filesystem and a real kill -9.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/baryonsimd" ./cmd/baryonsimd
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/omlint" ./cmd/omlint

# start_daemon LOGFILE CACHEDIR [extra flags...]: launches the daemon on an
# ephemeral port and sets $pid/$addr from the announced listener line.
start_daemon() {
    log=$1; cachedir=$2; shift 2
    "$tmp/baryonsimd" -addr 127.0.0.1:0 -cache-dir "$cachedir" "$@" 2>"$log" &
    pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's|^baryonsimd listening on http://\(.*\)$|\1|p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: baryonsimd never announced its listener" >&2
        cat "$log" >&2
        exit 1
    fi
}

# assert_identical DIR: every reference bundle must exist in DIR with
# byte-identical content.
assert_identical() {
    for ref in "$tmp/ref"/*.json; do
        got="$1/$(basename "$ref")"
        if [ ! -f "$got" ]; then
            echo "FAIL: $1 is missing $(basename "$ref")" >&2
            exit 1
        fi
        if ! cmp -s "$ref" "$got"; then
            echo "FAIL: $(basename "$ref") differs from the reference bytes in $1" >&2
            exit 1
        fi
    done
}

# 1. Reference pass: compute the 2-job mix and capture its bundles.
start_daemon "$tmp/d1.err" "$tmp/cache"
trap 'kill -9 "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
"$tmp/loadgen" -addr "http://$addr" -clients 2 -requests 8 -seeds 2 \
    -accesses 2000 -verify-bytes -dump-dir "$tmp/ref" >"$tmp/pass1.out"
cat "$tmp/pass1.out"
if [ "$(ls "$tmp/ref"/*.json | wc -l)" -ne 2 ]; then
    echo "FAIL: reference pass dumped $(ls "$tmp/ref" | wc -l) bundles, want 2" >&2
    exit 1
fi

# 2. Crash recovery: kill -9 with fresh work in flight, plant an orphan .tmp
# (what a crash between write and rename leaves), and restart.
"$tmp/loadgen" -addr "http://$addr" -clients 2 -requests 8 -seeds 4 \
    -accesses 2000 >/dev/null 2>&1 &
lg=$!
sleep 0.3
kill -9 "$pid" 2>/dev/null
wait "$lg" 2>/dev/null || true # in-flight requests may fail; that's the point
printf 'torn half-written bundle' >"$tmp/cache/sha256-feedface.bundle.json.tmp"

start_daemon "$tmp/d2.err" "$tmp/cache"
if ! grep -q "store recovery" "$tmp/d2.err"; then
    echo "FAIL: restarted daemon logged no recovery scan" >&2
    cat "$tmp/d2.err" >&2
    exit 1
fi
if ! grep -Eq "swept [1-9][0-9]* orphaned tmp" "$tmp/d2.err"; then
    echo "FAIL: recovery scan did not sweep the planted orphan tmp" >&2
    cat "$tmp/d2.err" >&2
    exit 1
fi
"$tmp/loadgen" -addr "http://$addr" -clients 2 -requests 8 -seeds 2 \
    -accesses 2000 -verify-bytes -min-hit-rate 1.0 -dump-dir "$tmp/after_crash" \
    >"$tmp/pass2.out"
cat "$tmp/pass2.out"
assert_identical "$tmp/after_crash"

# 3. Corruption self-heal: rot two published bundles on disk, restart (the
# live daemon would serve them from memory), and re-request the mix.
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null || true
# Rot exactly the two bundles the mix will re-request (the reference dump
# names them); the cache dir also holds bundles from the crash phase's wider
# mix that phase 3 never reads.
set -- "$tmp/ref"/*.json
f1="$tmp/cache/$(basename "$1" .json).bundle.json"
f2="$tmp/cache/$(basename "$2" .json).bundle.json"
printf 'X' | dd of="$f1" bs=1 seek=100 conv=notrunc 2>/dev/null
head -c 50 "$f2" >"$tmp/truncated" && mv "$tmp/truncated" "$f2"

start_daemon "$tmp/d3.err" "$tmp/cache"
"$tmp/loadgen" -addr "http://$addr" -clients 2 -requests 8 -seeds 2 \
    -accesses 2000 -verify-bytes -dump-dir "$tmp/after_corrupt" >"$tmp/pass3.out"
cat "$tmp/pass3.out"
assert_identical "$tmp/after_corrupt"
if [ "$(ls "$tmp/cache/quarantine" | wc -l)" -lt 2 ]; then
    echo "FAIL: corrupt entries were not quarantined" >&2
    ls -la "$tmp/cache" >&2
    exit 1
fi
"$tmp/omlint" -dump ok -url "http://$addr/metrics" >"$tmp/d3.metrics" 2>/dev/null
q=$(awk '$1 == "baryon_cache_quarantined_total" {print $2}' "$tmp/d3.metrics")
if [ -z "$q" ] || [ "$q" -lt 2 ]; then
    echo "FAIL: /metrics reports quarantined=$q, want >= 2" >&2
    exit 1
fi
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon did not drain after corruption recovery" >&2; exit 1; }
trap 'rm -rf "$tmp"' EXIT

# 4. Overload shedding: one worker, tight admission bounds, open-loop flood
# at 300 req/s over a cold 2-job mix. The daemon must answer 429s (clients
# see rejections) and every request must converge via retries.
start_daemon "$tmp/d4.err" "$tmp/cache-overload" \
    -workers 1 -max-queue 2 -max-sync-waiters 2
trap 'kill -9 "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
"$tmp/loadgen" -addr "http://$addr" -requests 60 -seeds 2 -accesses 20000 \
    -overload 300 -retries 6 -max-reject-rate 0 -verify-bytes \
    >"$tmp/pass4.out" 2>"$tmp/pass4.err" || {
    echo "FAIL: overloaded requests did not converge to success" >&2
    cat "$tmp/pass4.out" "$tmp/pass4.err" >&2
    exit 1
}
cat "$tmp/pass4.out"
rej=$(sed -n 's/.*rejected=\([0-9]*\).*/\1/p' "$tmp/pass4.out")
if [ -z "$rej" ] || [ "$rej" -eq 0 ]; then
    echo "FAIL: open-loop flood saw no rejections — admission control never engaged" >&2
    cat "$tmp/d4.err" >&2
    exit 1
fi
"$tmp/omlint" -dump ok -url "http://$addr/metrics" >"$tmp/d4.metrics" 2>/dev/null
srv_rej=$(awk '$1 == "baryon_admission_rejected_total" {print $2}' "$tmp/d4.metrics")
if [ -z "$srv_rej" ] || [ "$srv_rej" -eq 0 ]; then
    echo "FAIL: server-side admission.rejected is zero despite client rejections" >&2
    exit 1
fi
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon did not drain cleanly after the flood" >&2; exit 1; }
trap 'rm -rf "$tmp"' EXIT

echo "chaos-smoke OK: kill -9 recovery, corruption quarantine + self-heal, overload shed $rej rejections (server $srv_rej) with full convergence on $addr"
