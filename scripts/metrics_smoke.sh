#!/bin/sh
# Metrics smoke test: scrape /metrics from a live baryonsim run and lint the
# exposition with the in-repo validator (cmd/omlint), then check the
# end-of-run -metrics-out file the same way. Everything runs against
# 127.0.0.1 — no external network — so the smoke passes offline.
# `make metrics-smoke` and CI run this; the renderer and linter themselves
# are covered in-process by internal/obs's tests, so this script is the
# end-to-end check of the serving path.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/baryonsim" ./cmd/baryonsim
go build -o "$tmp/omlint" ./cmd/omlint

# A run long enough that the scrape lands mid-flight on any machine.
"$tmp/baryonsim" -workload 505.mcf_r -design Baryon \
    -accesses 5000000 -warmup 1000 -debug-addr 127.0.0.1:0 \
    >"$tmp/run.out" 2>"$tmp/run.err" &
pid=$!
trap 'kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

# The listener address is announced on stderr as
# "debug listener on http://HOST:PORT/runz".
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^debug listener on http://\(.*\)/runz$|\1|p' "$tmp/run.err")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: baryonsim never announced its debug listener" >&2
    cat "$tmp/run.err" >&2
    exit 1
fi

# Live scrape mid-run must pass the OpenMetrics linter.
if ! "$tmp/omlint" -url "http://$addr/metrics"; then
    echo "FAIL: live /metrics exposition is not valid OpenMetrics" >&2
    exit 1
fi

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT

# End-of-run export: -metrics-out writes the measurement-window snapshot,
# which must lint clean too and carry the run labels.
"$tmp/baryonsim" -workload 505.mcf_r -design Baryon \
    -accesses 2000 -warmup 500 -metrics-out "$tmp/run.metrics.txt" >/dev/null
"$tmp/omlint" "$tmp/run.metrics.txt"
for want in 'design="Baryon"' 'workload="505.mcf_r"' '# EOF'; do
    if ! grep -q "$want" "$tmp/run.metrics.txt"; then
        echo "FAIL: -metrics-out output missing $want" >&2
        cat "$tmp/run.metrics.txt" >&2
        exit 1
    fi
done

echo "metrics-smoke OK: live scrape on $addr and -metrics-out both lint clean"
