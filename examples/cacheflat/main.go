// Cache vs flat: the same workloads run under both hybrid-memory schemes
// (Section II-A). The cache scheme hides the fast memory from the OS; the
// flat scheme exposes it as physical memory and migrates by swapping, which
// buys capacity at the cost of swap traffic. Baryon supports both with the
// same metadata machinery; this example shows the trade-off.
package main

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func main() {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 10000

	fmt.Println("workload            scheme  design     cycles     serveRate  slowMB")
	for _, name := range []string{"505.mcf_r", "549.fotonik3d_r", "YCSB-B"} {
		w, _ := trace.ByName(name)

		cacheCfg := cfg
		cacheCfg.Mode = config.ModeCache
		cacheRes := experiment.RunOne(cacheCfg, w, experiment.DesignBaryon)

		flatCfg := cfg
		flatCfg.Mode = config.ModeFlat
		flatCfg.FullyAssociative = true
		flatRes := experiment.RunOne(flatCfg, w, experiment.DesignBaryonFA)

		fmt.Printf("%-18s  cache   %-9s  %-9d  %6.1f%%   %6.1f\n",
			name, cacheRes.Design, cacheRes.Cycles, 100*cacheRes.FastServeRate,
			float64(cacheRes.SlowBytes)/(1<<20))
		fmt.Printf("%-18s  flat    %-9s  %-9d  %6.1f%%   %6.1f\n",
			name, flatRes.Design, flatRes.Cycles, 100*flatRes.FastServeRate,
			float64(flatRes.SlowBytes)/(1<<20))
	}
	fmt.Println("\nThe flat scheme keeps the fast capacity OS-visible but pays for")
	fmt.Println("swaps; the cache scheme adapts faster. Baryon runs both.")
}
