// Ablation: sweep Baryon's selective-commit parameter k (Eq. 1) on one
// workload, reproducing the Fig. 13(d) experiment interactively. k balances
// layout stability against write(back) cost: k=0 is the Hybrid2-style
// write-cost-only policy, k=inf considers stability alone, and commit-all
// ignores the decision entirely.
package main

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func main() {
	w, _ := trace.ByName("520.omnetpp_r")
	cfg := config.Scaled()
	cfg.AccessesPerCore = 10000

	type point struct {
		label string
		mut   func(*config.Config)
	}
	points := []point{
		{"k=0 (write cost only)", func(c *config.Config) { c.CommitK = 0 }},
		{"k=1", func(c *config.Config) { c.CommitK = 1 }},
		{"k=2", func(c *config.Config) { c.CommitK = 2 }},
		{"k=4 (default)", func(c *config.Config) { c.CommitK = 4 }},
		{"k=inf (stability only)", func(c *config.Config) { c.CommitK = -1 }},
		{"commit-all", func(c *config.Config) { c.CommitAll = true }},
	}

	fmt.Printf("selective commit sweep on %s\n\n", w.Name)
	var base float64
	for _, p := range points {
		c := cfg
		p.mut(&c)
		res := experiment.RunOne(c, w, experiment.DesignBaryon)
		if base == 0 {
			base = float64(res.Cycles)
		}
		fmt.Printf("  %-24s %9d cycles  (%.3fx vs k=0)  commits=%d evicts=%d\n",
			p.label, res.Cycles, base/float64(res.Cycles),
			res.Stats.Get("baryon.commits"), res.Stats.Get("baryon.evictsToSlow"))
	}
}
