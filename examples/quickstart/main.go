// Quickstart: build a Baryon memory controller directly, issue reads and
// writes against it, and inspect what the controller did — the smallest
// possible tour of the library's core API (config -> store -> controller).
package main

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/core"
	"baryon/internal/hybrid"
	"baryon/internal/sim"
)

func main() {
	// A small hybrid memory: 4 MB DDR4-class fast memory (with a 256 kB
	// stage area carved out) in front of 32 MB of NVM-class slow memory.
	cfg := config.Scaled()
	cfg.FastBytes = 4 << 20
	cfg.StageBytes = 256 << 10
	cfg.SlowBytes = 32 << 20

	// The store is the canonical slow-memory image. A nil filler means
	// untouched memory reads as zeros; here we make every block hold its
	// own block number in every word, which compresses extremely well.
	store := hybrid.NewStore(func(b hybrid.BlockID, dst *[hybrid.BlockSize]byte) {
		for i := 0; i+8 <= len(dst); i += 8 {
			v := uint64(b)
			for k := 0; k < 8; k++ {
				dst[i+k] = byte(v >> (8 * k))
			}
		}
	})

	stats := sim.NewStats()
	ctrl := core.New(cfg, store, stats)

	// Touch a working set: sixteen 2 kB blocks, several sub-blocks each,
	// twice — the second round should hit fast memory.
	now := uint64(0)
	for round := 0; round < 2; round++ {
		for block := uint64(0); block < 16; block++ {
			for sub := uint64(0); sub < 4; sub++ {
				addr := block*2048 + sub*256
				res := ctrl.Access(now, addr, false, nil)
				now = res.Done + 50
			}
		}
	}

	// Write one line and read it back through the controller.
	data := make([]byte, 64)
	copy(data, []byte("hello, hybrid memory"))
	ctrl.Access(now, 3*2048, true, data)
	back := ctrl.Access(now+100, 3*2048, false, nil)
	fmt.Printf("read back: %q\n", back.Data[:20])

	fmt.Printf("accesses:        %d\n", stats.Get("baryon.accesses"))
	fmt.Printf("served by fast:  %d\n", stats.Get("baryon.servedFast"))
	fmt.Printf("stage hits:      %d\n", stats.Get("baryon.stage.hits"))
	fmt.Printf("ranges staged:   %d (mean CF %.2f — this data compresses at CF 4)\n",
		stats.Get("baryon.rangeFetches"),
		float64(stats.Get("baryon.rangeCFSum"))/float64(stats.Get("baryon.rangeFetches")))
	fmt.Printf("commits:         %d\n", stats.Get("baryon.commits"))
	fmt.Printf("slow bytes read: %d\n", stats.Get("NVM.bytesRead"))
	if msg := ctrl.CheckInvariants(); msg != "" {
		fmt.Printf("INVARIANT VIOLATION: %s\n", msg)
	} else {
		fmt.Println("structural invariants: ok")
	}
}
