// YCSB: the memcached+YCSB scenario of the paper's evaluation. A Zipfian
// key-value store with 1 kB records runs against Baryon and the compressed
// DRAM-cache baseline, under the write-heavy A mix and the read-mostly B
// mix, with and without the zero-block (Z-bit) optimisation that the paper
// credits with 8% on YCSB-A (key-value values are full of zero padding).
package main

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func main() {
	cfg := config.Scaled()
	cfg.AccessesPerCore = 10000

	for _, name := range []string{"YCSB-A", "YCSB-B"} {
		w, _ := trace.ByName(name)
		fmt.Printf("=== %s (%.0f%% writes, zipfian keys) ===\n", name, 100*w.WriteRatio)

		dice := experiment.RunOne(cfg, w, experiment.DesignDICE)
		baryon := experiment.RunOne(cfg, w, experiment.DesignBaryon)

		noZ := cfg
		noZ.ZeroBlockOpt = false
		baryonNoZ := experiment.RunOne(noZ, w, experiment.DesignBaryon)

		fmt.Printf("  DICE:              %9d cycles, serve %5.1f%%\n",
			dice.Cycles, 100*dice.FastServeRate)
		fmt.Printf("  Baryon:            %9d cycles, serve %5.1f%%, zero-served lines %d\n",
			baryon.Cycles, 100*baryon.FastServeRate, baryon.Stats.Get("baryon.servedZero"))
		fmt.Printf("  Baryon w/o Z-bit:  %9d cycles (Z-bit worth %.1f%%)\n",
			baryonNoZ.Cycles, 100*(float64(baryonNoZ.Cycles)/float64(baryon.Cycles)-1))
		fmt.Printf("  Baryon vs DICE:    %.2fx\n\n", float64(dice.Cycles)/float64(baryon.Cycles))
	}
}
