// Custom workload: model your own application's memory behaviour without
// touching the library. A workload is four numbers and a pattern — here, an
// in-memory analytics engine: a large column store scanned sequentially with
// a Zipf-hot dictionary, 30% of each 2 kB page live, moderately
// compressible integer-coded columns. The same definition can live in a
// JSON file and run via `baryonsim -workload-file` (see trace.LoadFile).
package main

import (
	"fmt"

	"baryon/internal/config"
	"baryon/internal/datagen"
	"baryon/internal/experiment"
	"baryon/internal/trace"
)

func main() {
	analytics := trace.Workload{
		Name:            "column-analytics",
		Pattern:         trace.PatternZipf,
		FootprintFactor: 3.0, // 3x the fast-memory capacity
		Shared:          true,
		BlockUtil:       0.3, // 30% of each page holds live column chunks
		WriteRatio:      0.05,
		BurstLines:      6,
		GapMean:         7,
		ZipfTheta:       0.85,
		// Integer-coded columns: small-int heavy with some raw strings.
		Mix: datagen.Mix{Weights: [5]float64{1, 5, 0, 1, 3}},
	}

	cfg := config.Scaled()
	cfg.AccessesPerCore = 10000

	fmt.Printf("custom workload %q (footprint %.0fx fast memory)\n\n",
		analytics.Name, analytics.FootprintFactor)
	var base float64
	for _, d := range []string{
		experiment.DesignSimple, experiment.DesignUnison,
		experiment.DesignDICE, experiment.DesignBaryon,
	} {
		res := experiment.RunOne(cfg, analytics, d)
		if base == 0 {
			base = float64(res.Cycles)
		}
		fmt.Printf("  %-12s %.2fx vs Simple   serve %5.1f%%   slow traffic %5.1f MB\n",
			d, base/float64(res.Cycles), 100*res.FastServeRate,
			float64(res.SlowBytes)/(1<<20))
	}
	fmt.Println("\nTune the struct above (or a JSON file) to explore your own workload.")
}
