# Standard verification pipeline. `make check` is what CI should run.

GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment suite under the race detector is CPU-bound and can exceed
# go test's default 10m per-package timeout on small machines.
race:
	$(GO) test -race -timeout 40m ./...

# Short allocation smoke: tracks the single-run hot path (allocs/op).
bench:
	$(GO) test -run '^$$' -bench SingleRun -benchmem -benchtime 2x .

check: build vet race bench
