# Standard verification pipeline. `make check` is what CI should run.

GO ?= go

.PHONY: build vet lint test race bench bench-json fuzz-smoke cancel-smoke cxl-smoke metrics-smoke report-smoke serve-smoke chaos-smoke check

# Pinned staticcheck version; CI installs exactly this, so lint results are
# reproducible. Update deliberately alongside toolchain bumps.
STATICCHECK_VERSION ?= 2024.1.1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when available (PATH or GOPATH/bin), otherwise prints how
# to get it and succeeds — offline and fresh checkouts must not fail the
# pipeline on a missing optional tool. CI installs the pinned version first,
# so there lint findings do fail.
lint:
	@sc=$$(command -v staticcheck || echo "$$($(GO) env GOPATH)/bin/staticcheck"); \
	if [ -x "$$sc" ]; then \
		echo "staticcheck ./..."; \
		"$$sc" ./...; \
	else \
		echo "staticcheck not installed; skipping lint" >&2; \
		echo "install with: $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)" >&2; \
	fi

test:
	$(GO) test ./...

# The experiment suite under the race detector is CPU-bound and can exceed
# go test's default 10m per-package timeout on small machines.
race:
	$(GO) test -race -timeout 40m ./...

# Short allocation smoke: tracks the single-run hot path (allocs/op). The
# pinned -count/-benchtime make repeats comparable run-to-run; see README
# "Benchmark trajectory" for how to compare two commits.
bench:
	$(GO) test -run '^$$' -bench SingleRun -benchmem -count 3 -benchtime 2x .

# Machine-checked bench trajectory: repeats the hot-path benchmarks under
# the same fixed iteration plan, aggregates min-of-repeats into
# BENCH_singlerun.json, and fails if any benchmark's allocs/op regresses
# more than 10% against the committed BENCH_baseline.json.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_singlerun.json \
		-baseline BENCH_baseline.json -threshold 0.10

# Short native-fuzz bursts over the compressor round-trips, the design-file
# Overrides schema, the service's job-decode and store-entry verification
# surfaces, and the strict bundle decoder (go test allows one -fuzz target
# per invocation, hence the loops).
FUZZTIME ?= 10s
fuzz-smoke:
	for t in FuzzFPCRoundTrip FuzzBDIRoundTrip FuzzCPackRoundTrip; do \
		$(GO) test ./internal/compress -run '^$$' -fuzz $$t -fuzztime $(FUZZTIME) || exit 1; \
	done
	$(GO) test ./internal/config -run '^$$' -fuzz FuzzOverridesJSON -fuzztime $(FUZZTIME)
	for t in FuzzJobDecode FuzzStoreVerify; do \
		$(GO) test ./internal/service -run '^$$' -fuzz $$t -fuzztime $(FUZZTIME) || exit 1; \
	done
	$(GO) test ./internal/report -run '^$$' -fuzz FuzzBundleDecode -fuzztime $(FUZZTIME)

# End-to-end graceful-shutdown check: SIGINT a running sweep, assert a valid
# partial CSV + non-zero exit (see scripts/cancel_smoke.sh).
cancel-smoke:
	sh scripts/cancel_smoke.sh

# End-to-end three-tier check: the shipped DRAM+NVM+CXL design files run
# through cmd/baryonsim -design-file deterministically with a per-tier
# traffic breakdown (see scripts/cxl_smoke.sh).
cxl-smoke:
	sh scripts/cxl_smoke.sh

# End-to-end observability check: scrape /metrics from a live run and lint it
# with the in-repo OpenMetrics validator, then lint the -metrics-out file.
# Loopback only, so it passes offline (see scripts/metrics_smoke.sh).
metrics-smoke:
	sh scripts/metrics_smoke.sh

# End-to-end regression-gate check: two identical runs produce byte-identical
# bundles, cmd/runreport self-diffs clean, and a tampered counter makes it
# exit non-zero (see scripts/report_smoke.sh).
report-smoke:
	sh scripts/report_smoke.sh

# End-to-end job-server check: baryonsimd serves a repeated submission from
# the result cache byte-identically, drains cleanly on SIGTERM, reloads its
# store cold after a restart, and holds >=50% hit rate under a mixed load
# (see scripts/serve_smoke.sh).
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end crash-safety and overload check: kill -9 the daemon mid-flight,
# corrupt and truncate store entries, flood it open-loop past capacity — it
# must recover, quarantine, self-heal byte-identically and shed load with
# 429s that retrying clients converge through (see scripts/chaos_smoke.sh).
chaos-smoke:
	sh scripts/chaos_smoke.sh

check: build vet lint race bench fuzz-smoke cancel-smoke cxl-smoke metrics-smoke report-smoke serve-smoke chaos-smoke
