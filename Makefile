# Standard verification pipeline. `make check` is what CI should run.

GO ?= go

.PHONY: build vet lint test race bench fuzz-smoke cancel-smoke check

# Pinned staticcheck version; CI installs exactly this, so lint results are
# reproducible. Update deliberately alongside toolchain bumps.
STATICCHECK_VERSION ?= 2024.1.1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when available (PATH or GOPATH/bin), otherwise prints how
# to get it and succeeds — offline and fresh checkouts must not fail the
# pipeline on a missing optional tool. CI installs the pinned version first,
# so there lint findings do fail.
lint:
	@sc=$$(command -v staticcheck || echo "$$($(GO) env GOPATH)/bin/staticcheck"); \
	if [ -x "$$sc" ]; then \
		echo "staticcheck ./..."; \
		"$$sc" ./...; \
	else \
		echo "staticcheck not installed; skipping lint" >&2; \
		echo "install with: $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)" >&2; \
	fi

test:
	$(GO) test ./...

# The experiment suite under the race detector is CPU-bound and can exceed
# go test's default 10m per-package timeout on small machines.
race:
	$(GO) test -race -timeout 40m ./...

# Short allocation smoke: tracks the single-run hot path (allocs/op).
bench:
	$(GO) test -run '^$$' -bench SingleRun -benchmem -benchtime 2x .

# Short native-fuzz bursts over the compressor round-trips and the
# design-file Overrides schema (go test allows one -fuzz target per
# invocation, hence the loop).
FUZZTIME ?= 10s
fuzz-smoke:
	for t in FuzzFPCRoundTrip FuzzBDIRoundTrip FuzzCPackRoundTrip; do \
		$(GO) test ./internal/compress -run '^$$' -fuzz $$t -fuzztime $(FUZZTIME) || exit 1; \
	done
	$(GO) test ./internal/config -run '^$$' -fuzz FuzzOverridesJSON -fuzztime $(FUZZTIME)

# End-to-end graceful-shutdown check: SIGINT a running sweep, assert a valid
# partial CSV + non-zero exit (see scripts/cancel_smoke.sh).
cancel-smoke:
	sh scripts/cancel_smoke.sh

check: build vet lint race bench fuzz-smoke cancel-smoke
